package octocache

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// scanRing generates points on a cylindrical wall around the origin.
func scanRing(origin Vec3, radius float64, n int) []Vec3 {
	pts := make([]Vec3, 0, n)
	for i := 0; i < n; i++ {
		ang := float64(i) / float64(n) * 2 * math.Pi
		pts = append(pts, origin.Add(V(radius*math.Cos(ang), radius*math.Sin(ang), 0)))
	}
	return pts
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := New(Options{Resolution: -1}); err == nil {
		t.Error("negative resolution accepted")
	}
	m, err := New(Options{Resolution: 0.1})
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	m.Close()
	// An out-of-range backend is rejected like any other invalid option.
	if _, err := New(Options{Resolution: 0.1, Backend: Backend(99)}); err == nil {
		t.Error("unknown backend accepted")
	}
	m, err = New(Options{Resolution: 0.1, Backend: BackendGrid})
	if err != nil {
		t.Fatalf("grid backend rejected: %v", err)
	}
	m.Close()
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid options did not panic")
		}
	}()
	MustNew(Options{})
}

func TestAllModesAgree(t *testing.T) {
	maps := []*Map{
		MustNew(Options{Resolution: 0.1, Mode: ModeOctoMap}),
		MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 12}),
		MustNew(Options{Resolution: 0.1, Mode: ModeParallel, CacheBuckets: 1 << 12}),
	}
	origin := V(0, 0, 1)
	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 5; batch++ {
		pts := scanRing(origin, 2+rng.Float64(), 100)
		for _, m := range maps {
			m.Insert(origin, pts)
		}
	}
	probes := scanRing(origin, 2.5, 40)
	probes = append(probes, origin, V(0.5, 0.5, 1), V(10, 10, 10))
	for _, p := range probes {
		l0, k0 := maps[0].Occupancy(p)
		for i, m := range maps[1:] {
			l, k := m.Occupancy(p)
			if l != l0 || k != k0 {
				t.Fatalf("mode %d disagrees at %v: (%v,%v) vs (%v,%v)", i+1, p, l, k, l0, k0)
			}
		}
	}
	for _, m := range maps {
		m.Close()
	}
}

func TestOccupiedAndProbability(t *testing.T) {
	m := MustNew(Options{Resolution: 0.1})
	target := V(3, 0, 1)
	m.Insert(V(0, 0, 1), []Vec3{target})
	if !m.Occupied(target) {
		t.Error("scanned obstacle not occupied")
	}
	l, known := m.Occupancy(target)
	if !known {
		t.Fatal("scanned obstacle unknown")
	}
	if p := Probability(l); p <= 0.5 || p >= 1 {
		t.Errorf("occupied probability %v out of (0.5, 1)", p)
	}
	// Free voxel along the ray.
	l, known = m.Occupancy(V(1.5, 0, 1))
	if !known || Probability(l) >= 0.5 {
		t.Errorf("mid-ray voxel should be known free, got %v,%v", l, known)
	}
	m.Close()
}

func TestStatsAndResolution(t *testing.T) {
	m := MustNew(Options{Resolution: 0.25, Mode: ModeSerial, CacheBuckets: 1 << 10})
	if m.Resolution() != 0.25 {
		t.Errorf("Resolution = %v", m.Resolution())
	}
	origin := V(0, 0, 1)
	for i := 0; i < 4; i++ {
		m.Insert(origin, scanRing(origin, 3, 200))
	}
	m.Close()
	st := m.Stats()
	if st.Pipeline.Batches != 4 || st.Pipeline.VoxelsTraced == 0 || st.Arena.LiveNodes == 0 || st.Arena.Bytes == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.Cache.HitRate <= 0.3 {
		t.Errorf("repeated identical scans should hit the cache hard, got %.2f", st.Cache.HitRate)
	}
	if st.Cache.Hits == 0 || st.Cache.Inserts == 0 || st.Cache.Evicted == 0 {
		t.Errorf("cache counters incomplete: %+v", st.Cache)
	}
	if st.Pipeline.VoxelsToOctree >= st.Pipeline.VoxelsTraced {
		t.Error("cache absorbed nothing")
	}
	if st.Arena.Occupancy() <= 0 || st.Arena.Occupancy() > 1 {
		t.Errorf("arena occupancy %v out of (0, 1]", st.Arena.Occupancy())
	}
	if got := st.Arena.Fragmentation() + st.Arena.Occupancy(); math.Abs(got-1) > 1e-12 {
		t.Errorf("occupancy %v + fragmentation %v != 1", st.Arena.Occupancy(), st.Arena.Fragmentation())
	}
}

func TestWriteTo(t *testing.T) {
	m := MustNew(Options{Resolution: 0.1, MaxRange: 5})
	m.Insert(V(0, 0, 1), scanRing(V(0, 0, 1), 2, 100))
	m.Close()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n == 0 || buf.Len() == 0 {
		t.Error("empty serialization")
	}
}

func TestDedupRaysMode(t *testing.T) {
	a := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, DedupRays: true, CacheBuckets: 1 << 10})
	origin := V(0, 0, 1)
	a.Insert(origin, scanRing(origin, 2, 300))
	a.Close()
	st := a.Stats()
	// With per-batch dedup the trace stream has no duplicates, so a
	// single batch cannot produce cache hits.
	if st.Cache.HitRate != 0 {
		t.Errorf("single deduped batch hit rate = %v, want 0", st.Cache.HitRate)
	}
}

func TestBackendsAgreeOnQueries(t *testing.T) {
	a := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})
	b := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10, Backend: BackendGrid})
	origin := V(0, 0, 1)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		var pts []Vec3
		for j := 0; j < 150; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*3
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		a.Insert(origin, pts)
		b.Insert(origin, pts)
		for _, p := range pts[:30] {
			la, ka := a.Occupancy(p)
			lb, kb := b.Occupancy(p)
			if la != lb || ka != kb {
				t.Fatalf("octree and grid backends disagree at %v", p)
			}
		}
	}
	a.Close()
	b.Close()
}

func TestNewRejectsNegativeOptions(t *testing.T) {
	cases := []Options{
		{Resolution: 0.1, CacheBuckets: -1},
		{Resolution: 0.1, CacheTau: -3},
		{Resolution: 0.1, Shards: -2},
		{Resolution: 0.1, Shards: MaxShards * 2},
		{Resolution: 0.1, Compaction: CompactionPolicy{MinFreeFraction: -0.5}},
		{Resolution: 0.1, Compaction: CompactionPolicy{MinFreeFraction: 1.5}},
		{Resolution: 0.1, Compaction: CompactionPolicy{MinFreeFraction: 0.5, MinFreeSlots: -1}},
	}
	for i, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, opts)
		}
	}
}

func TestShardedAgreesWithSerial(t *testing.T) {
	ref := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 12})
	sh := MustNew(Options{Resolution: 0.1, Shards: 4, CacheBuckets: 1 << 12})
	if sh.Shards() != 4 || ref.Shards() != 1 {
		t.Fatalf("Shards() = %d / %d", sh.Shards(), ref.Shards())
	}
	rng := rand.New(rand.NewSource(7))
	origins := []Vec3{V(0, 0, 1), V(-2, 1, 0.5)}
	var probes []Vec3
	for batch := 0; batch < 6; batch++ {
		origin := origins[batch%2]
		pts := scanRing(origin, 1.5+rng.Float64()*2, 120)
		ref.Insert(origin, pts)
		if err := sh.Insert(origin, pts); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		probes = append(probes, pts[:15]...)
		for _, p := range probes {
			l0, k0 := ref.Occupancy(p)
			l1, k1 := sh.Occupancy(p)
			if l0 != l1 || k0 != k1 {
				t.Fatalf("batch %d: disagree at %v: (%v,%v) vs (%v,%v)", batch, p, l1, k1, l0, k0)
			}
		}
	}

	// Key-space and ray queries agree through the public API.
	k, ok := sh.CoordToKey(probes[0])
	if !ok {
		t.Fatal("probe outside map")
	}
	if sh.OccupiedKey(k) != ref.OccupiedKey(k) {
		t.Error("OccupiedKey disagrees")
	}
	if c := sh.KeyToCoord(k); c.Sub(probes[0]).Norm() > 0.1*math.Sqrt(3) {
		t.Errorf("KeyToCoord(%v) = %v, too far from %v", k, c, probes[0])
	}
	h0, ok0 := ref.CastRay(V(0, 0, 1), V(1, 0.2, 0), 8, true)
	h1, ok1 := sh.CastRay(V(0, 0, 1), V(1, 0.2, 0), 8, true)
	if ok0 != ok1 || h0 != h1 {
		t.Errorf("CastRay disagrees: (%v,%v) vs (%v,%v)", h1, ok1, h0, ok0)
	}

	// Closed maps still agree, and serialize to identical bytes.
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := ref.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("sharded serialization differs from serial")
	}
}

func TestInsertAfterCloseReturnsErrClosed(t *testing.T) {
	for _, opts := range []Options{
		{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10},
		{Resolution: 0.1, Shards: 2, CacheBuckets: 1 << 10},
	} {
		m := MustNew(opts)
		origin := V(0, 0, 1)
		pts := scanRing(origin, 2, 50)
		if err := m.Insert(origin, pts); err != nil {
			t.Fatalf("%+v: Insert: %v", opts, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%+v: Close: %v", opts, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%+v: second Close: %v", opts, err)
		}
		if err := m.Insert(origin, pts); err != ErrClosed {
			t.Errorf("%+v: Insert after Close = %v, want ErrClosed", opts, err)
		}
		if !m.Occupied(pts[0]) {
			t.Errorf("%+v: closed map lost its content", opts)
		}
	}
}

func TestShardedStats(t *testing.T) {
	m := MustNew(Options{Resolution: 0.1, Shards: 3, CacheBuckets: 1 << 10})
	if m.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4 (rounded up)", m.Shards())
	}
	origin := V(0, 0, 1)
	for i := 0; i < 3; i++ {
		if err := m.Insert(origin, scanRing(origin, 2.5, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Shards != 4 || st.Pipeline.Batches != 3 || st.Pipeline.VoxelsTraced == 0 || st.Arena.LiveNodes == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	per := m.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats len = %d", len(per))
	}
	sum := 0
	for _, s := range per {
		if s.QueueDepth != 0 {
			t.Errorf("shard %d queue depth %d after Close", s.Shard, s.QueueDepth)
		}
		sum += s.Arena.LiveNodes
	}
	if sum != st.Arena.LiveNodes {
		t.Errorf("per-shard nodes %d != aggregate %d", sum, st.Arena.LiveNodes)
	}
	// Single-driver maps report no per-shard breakdown.
	u := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})
	if u.ShardStats() != nil {
		t.Error("unsharded ShardStats not nil")
	}
	u.Close()
}

// TestOpenRoundTrip: a map serialized with WriteTo reopens through Open
// — single-driver and sharded — answering identically, accepting further
// scans, and reserializing to the same bytes when untouched.
func TestOpenRoundTrip(t *testing.T) {
	src := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10, MaxRange: 6})
	origins := []Vec3{V(0, 0, 0.5), V(-2, 1.5, -0.5), V(1.5, -2, 1)}
	var probes []Vec3
	for i, origin := range origins {
		pts := scanRing(origin, 1.5+0.4*float64(i), 150)
		if err := src.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pts[:40]...)
		probes = append(probes, origin)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := src.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{
		{}, // defaults: ModeParallel, unsharded
		{Mode: ModeSerial},
		{Mode: ModeOctoMap},
		{Shards: 1}, // sharded, async per shard (default mode)
		{Shards: 4},
		{Shards: 4, Mode: ModeSerial},
		{Resolution: 99}, // stream params win over Options.Resolution
	} {
		m, err := Open(bytes.NewReader(blob.Bytes()), opts)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opts, err)
		}
		if m.Resolution() != 0.1 {
			t.Fatalf("Open(%+v): resolution %v, want stream's 0.1", opts, m.Resolution())
		}
		for _, p := range probes {
			lw, kw := src.Occupancy(p)
			if lg, kg := m.Occupancy(p); lg != lw || kg != kw {
				t.Fatalf("Open(%+v): disagrees with source at %v: (%v,%v) vs (%v,%v)",
					opts, p, lg, kg, lw, kw)
			}
		}
		// Untouched, the reopened map reserializes to the same bytes.
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if _, err := m.WriteTo(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), blob.Bytes()) {
			t.Errorf("Open(%+v): reserialization differs from source", opts)
		}
	}

	// A reopened map keeps mapping: new scans land on top of the loaded
	// state exactly as they would have on the original.
	reopened, err := Open(bytes.NewReader(blob.Bytes()), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	extra := scanRing(V(0, 0, 0.5), 2.5, 120)
	if err := reopened.Insert(V(0, 0, 0.5), extra); err != nil {
		t.Fatalf("Insert after Open: %v", err)
	}
	if _, known := reopened.Occupancy(extra[0]); !known {
		t.Error("scan inserted after Open not visible")
	}
	reopened.Close()

	if _, err := Open(bytes.NewReader([]byte("not a map")), Options{}); err == nil {
		t.Error("Open accepted garbage input")
	}
}

// TestModeComposesWithShards: every Mode × Shards combination answers
// bit-identically to the unsharded serial pipeline on the same stream —
// Mode is no longer ignored when Shards >= 1.
func TestModeComposesWithShards(t *testing.T) {
	ref := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})
	var maps []*Map
	for _, mode := range []Mode{ModeParallel, ModeSerial, ModeOctoMap} {
		for _, shards := range []int{0, 1, 4} {
			maps = append(maps, MustNew(Options{
				Resolution: 0.1, Mode: mode, Shards: shards, CacheBuckets: 1 << 10,
			}))
		}
	}
	origin := V(0, 0, 0.5)
	rng := rand.New(rand.NewSource(11))
	var probes []Vec3
	for batch := 0; batch < 5; batch++ {
		var pts []Vec3
		for j := 0; j < 120; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*2.5
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		if err := ref.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		for _, m := range maps {
			if err := m.Insert(origin, pts); err != nil {
				t.Fatal(err)
			}
		}
		probes = append(probes, pts[:25]...)
		for _, p := range probes {
			lw, kw := ref.Occupancy(p)
			for i, m := range maps {
				if lg, kg := m.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("batch %d map %d (%d shards): disagrees at %v", batch, i, m.Shards(), p)
				}
			}
		}
	}
	ref.Close()
	for _, m := range maps {
		m.Close()
	}
}
