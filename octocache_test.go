package octocache

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// scanRing generates points on a cylindrical wall around the origin.
func scanRing(origin Vec3, radius float64, n int) []Vec3 {
	pts := make([]Vec3, 0, n)
	for i := 0; i < n; i++ {
		ang := float64(i) / float64(n) * 2 * math.Pi
		pts = append(pts, origin.Add(V(radius*math.Cos(ang), radius*math.Sin(ang), 0)))
	}
	return pts
}

func TestNewCheckedValidates(t *testing.T) {
	if _, err := NewChecked(Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := NewChecked(Options{Resolution: -1}); err == nil {
		t.Error("negative resolution accepted")
	}
	m, err := NewChecked(Options{Resolution: 0.1})
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	m.Finalize()
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid options did not panic")
		}
	}()
	New(Options{})
}

func TestAllModesAgree(t *testing.T) {
	maps := []*Map{
		New(Options{Resolution: 0.1, Mode: ModeOctoMap}),
		New(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 12}),
		New(Options{Resolution: 0.1, Mode: ModeParallel, CacheBuckets: 1 << 12}),
	}
	origin := V(0, 0, 1)
	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 5; batch++ {
		pts := scanRing(origin, 2+rng.Float64(), 100)
		for _, m := range maps {
			m.InsertPointCloud(origin, pts)
		}
	}
	probes := scanRing(origin, 2.5, 40)
	probes = append(probes, origin, V(0.5, 0.5, 1), V(10, 10, 10))
	for _, p := range probes {
		l0, k0 := maps[0].Occupancy(p)
		for i, m := range maps[1:] {
			l, k := m.Occupancy(p)
			if l != l0 || k != k0 {
				t.Fatalf("mode %d disagrees at %v: (%v,%v) vs (%v,%v)", i+1, p, l, k, l0, k0)
			}
		}
	}
	for _, m := range maps {
		m.Finalize()
	}
}

func TestOccupiedAndProbability(t *testing.T) {
	m := New(Options{Resolution: 0.1})
	target := V(3, 0, 1)
	m.InsertPointCloud(V(0, 0, 1), []Vec3{target})
	if !m.Occupied(target) {
		t.Error("scanned obstacle not occupied")
	}
	l, known := m.Occupancy(target)
	if !known {
		t.Fatal("scanned obstacle unknown")
	}
	if p := Probability(l); p <= 0.5 || p >= 1 {
		t.Errorf("occupied probability %v out of (0.5, 1)", p)
	}
	// Free voxel along the ray.
	l, known = m.Occupancy(V(1.5, 0, 1))
	if !known || Probability(l) >= 0.5 {
		t.Errorf("mid-ray voxel should be known free, got %v,%v", l, known)
	}
	m.Finalize()
}

func TestStatsAndResolution(t *testing.T) {
	m := New(Options{Resolution: 0.25, Mode: ModeSerial, CacheBuckets: 1 << 10})
	if m.Resolution() != 0.25 {
		t.Errorf("Resolution = %v", m.Resolution())
	}
	origin := V(0, 0, 1)
	for i := 0; i < 4; i++ {
		m.InsertPointCloud(origin, scanRing(origin, 3, 200))
	}
	m.Finalize()
	st := m.Stats()
	if st.Batches != 4 || st.VoxelsTraced == 0 || st.TreeNodes == 0 || st.TreeBytes == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.CacheHitRate <= 0.3 {
		t.Errorf("repeated identical scans should hit the cache hard, got %.2f", st.CacheHitRate)
	}
	if st.VoxelsToOctree >= st.VoxelsTraced {
		t.Error("cache absorbed nothing")
	}
}

func TestWriteTo(t *testing.T) {
	m := New(Options{Resolution: 0.1, MaxRange: 5})
	m.InsertPointCloud(V(0, 0, 1), scanRing(V(0, 0, 1), 2, 100))
	m.Finalize()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n == 0 || buf.Len() == 0 {
		t.Error("empty serialization")
	}
}

func TestDedupRaysMode(t *testing.T) {
	a := New(Options{Resolution: 0.1, Mode: ModeSerial, DedupRays: true, CacheBuckets: 1 << 10})
	origin := V(0, 0, 1)
	a.InsertPointCloud(origin, scanRing(origin, 2, 300))
	a.Finalize()
	st := a.Stats()
	// With per-batch dedup the trace stream has no duplicates, so a
	// single batch cannot produce cache hits.
	if st.CacheHitRate != 0 {
		t.Errorf("single deduped batch hit rate = %v, want 0", st.CacheHitRate)
	}
}

func TestArenaOptionAgreesWithHeap(t *testing.T) {
	a := New(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})
	b := New(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10, Arena: true})
	origin := V(0, 0, 1)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		var pts []Vec3
		for j := 0; j < 150; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*3
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		a.InsertPointCloud(origin, pts)
		b.InsertPointCloud(origin, pts)
		for _, p := range pts[:30] {
			la, ka := a.Occupancy(p)
			lb, kb := b.Occupancy(p)
			if la != lb || ka != kb {
				t.Fatalf("arena and heap maps disagree at %v", p)
			}
		}
	}
	a.Finalize()
	b.Finalize()
}
