#!/bin/sh
# Service smoke test: bring up a loopback map service, stream a dataset
# into it through the wire protocol with one producer connection, and
# require the downloaded snapshot to be bit-identical to the same
# dataset built offline by mapbuilder. One producer keeps the batch
# order sequential, so the comparison is exact by the repo's
# bit-identity invariant.
set -eu

GO=${GO:-go}
ADDR=${SMOKE_ADDR:-127.0.0.1:7341}
METRICS=${SMOKE_METRICS:-127.0.0.1:7342}
TMP=$(mktemp -d)
SRV=
trap 'if [ -n "$SRV" ]; then kill "$SRV" 2>/dev/null || true; fi; rm -rf "$TMP"' EXIT

"$GO" build -o "$TMP/mapserver" ./cmd/mapserver
"$GO" build -o "$TMP/mapbuilder" ./cmd/mapbuilder

"$TMP/mapserver" -listen "$ADDR" -metrics "$METRICS" >"$TMP/server.log" 2>&1 &
SRV=$!

# Wait for the listener: a tiny throwaway ingest doubles as the probe.
ready=
i=0
while [ $i -lt 50 ]; do
    if "$TMP/mapserver" -connect "$ADDR" -tenant probe -dataset fr079 \
        -scale 0.02 -producers 1 -queriers 0 >/dev/null 2>&1; then
        ready=1
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ -z "$ready" ]; then
    echo "smoke-service: service never came up" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

# Stream the dataset through the service and download the snapshot.
"$TMP/mapserver" -connect "$ADDR" -tenant smoke -dataset fr079 -scale 0.1 \
    -res 0.2 -shards 2 -producers 1 -queriers 2 -out "$TMP/streamed.ot"

# Build the same dataset offline.
"$TMP/mapbuilder" -dataset fr079 -scale 0.1 -res 0.2 -out "$TMP/offline.ot" >/dev/null

cmp "$TMP/streamed.ot" "$TMP/offline.ot"
echo "smoke-service: streamed snapshot is bit-identical to the offline build"

# The metrics endpoint must serve the document with the backpressure
# counter and our tenant in it.
if command -v curl >/dev/null 2>&1; then
    doc=$(curl -fsS "http://$METRICS/metrics")
    echo "$doc" | grep -q '"backpressure_stalls"'
    echo "$doc" | grep -q '"smoke"'
    echo "smoke-service: /metrics serves tenant statistics"
fi
