package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"octocache"
	"octocache/internal/wire"
)

// serverConn handles one client connection: the read loop decodes and
// dispatches frames; an applier goroutine drains the bounded insert
// queue into the attached tenant and acks each batch. Queries and
// snapshot streams are answered on the read loop itself — they
// multiplex with the applier's acks on the shared writer, and sharded
// tenant maps make them safe against in-flight inserts.
type serverConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	// wmu serializes frame writes from the read loop and the applier;
	// wbuf is the shared framing scratch it guards.
	wmu  sync.Mutex
	wbuf []byte

	// insertQ is the backpressure boundary: capacity Config.Window.
	// When the applier lags by a full window the read loop blocks here,
	// the kernel's receive buffer fills, and TCP flow control stalls
	// the client — bounded memory no matter how fast the client sends.
	insertQ chan insertJob
	applied sync.WaitGroup

	// cur is the tenant this connection is attached to. Only the read
	// loop touches it; the applier learns the tenant from each job.
	cur *tenant

	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}
}

type insertJob struct {
	t      *tenant
	id     uint64
	origin octocache.Vec3
	points []octocache.Vec3
}

func newServerConn(s *Server, nc net.Conn) *serverConn {
	return &serverConn{
		s:       s,
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		insertQ: make(chan insertJob, s.cfg.Window),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// shutdown unblocks the connection's goroutines; safe to call many
// times and from any goroutine.
func (c *serverConn) shutdown() {
	c.quitOnce.Do(func() {
		close(c.quit)
		c.nc.Close()
	})
}

// wait blocks until run has returned.
func (c *serverConn) wait() { <-c.done }

// writeFrame frames and writes one payload. Errors are returned but
// callers on the egress path may ignore them: a dead connection is
// discovered by the read loop as well.
func (c *serverConn) writeFrame(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = wire.AppendFrame(c.wbuf[:0], payload)
	_, err := c.nc.Write(c.wbuf)
	return err
}

func (c *serverConn) writeErr(scratch []byte, id uint64, code uint16, err error) []byte {
	payload := wire.AppendErr(scratch[:0], id, code, err.Error())
	c.writeFrame(payload)
	return payload
}

func (c *serverConn) writeOK(scratch []byte, id uint64) []byte {
	payload := wire.AppendOK(scratch[:0], id)
	c.writeFrame(payload)
	return payload
}

// run owns the connection lifecycle: handshake, applier start, read
// loop, teardown.
func (c *serverConn) run() {
	defer func() {
		c.shutdown()
		close(c.insertQ) // read loop is done; let the applier drain out
		c.applied.Wait()
		if c.cur != nil {
			c.cur.refs.Add(-1)
			c.cur = nil
		}
		c.s.forget(c)
		close(c.done)
	}()

	if !c.handshake() {
		return
	}

	c.applied.Add(1)
	go c.applier()

	c.readLoop()
}

// handshake expects exactly one THello and answers TWelcome, or TErr
// with CodeVersion when the client speaks another protocol or version.
func (c *serverConn) handshake() bool {
	var scratch []byte
	payload, buf, err := wire.ReadFrame(c.br, nil)
	if err != nil {
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil || h.Magic != wire.Magic {
		c.writeErr(scratch, 0, wire.CodeVersion, fmt.Errorf("bad handshake"))
		return false
	}
	if h.Version != wire.Version {
		c.writeErr(scratch, 0, wire.CodeVersion,
			fmt.Errorf("protocol version %d not supported (server speaks %d)", h.Version, wire.Version))
		return false
	}
	c.wbuf = buf // recycle the read scratch for framing
	return c.writeFrame(wire.AppendWelcome(nil)) == nil
}

// applier drains the insert queue, applying each batch to its tenant
// and acking it. One applier per connection keeps a client's batches
// in order; separate connections proceed in parallel.
func (c *serverConn) applier() {
	defer c.applied.Done()
	var scratch []byte
	for job := range c.insertQ {
		err := job.t.m.Insert(job.origin, job.points)
		job.t.inFlight.Add(-1)
		if err != nil {
			scratch = c.writeErr(scratch, job.id, wire.CodeInternal, err)
			continue
		}
		job.t.acked.Add(1)
		scratch = c.writeOK(scratch, job.id)
	}
}

// readLoop decodes and dispatches frames until the connection fails, a
// protocol violation is detected, or the server shuts down.
func (c *serverConn) readLoop() {
	var (
		buf     []byte // frame read scratch, recycled across frames
		scratch []byte // response payload scratch for read-loop replies
	)
	for {
		payload, nbuf, err := wire.ReadFrame(c.br, buf)
		buf = nbuf
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				c.writeErr(scratch, 0, wire.CodeBadRequest, err)
			}
			return
		}
		t, err := wire.PayloadType(payload)
		if err != nil {
			c.writeErr(scratch, 0, wire.CodeBadRequest, err)
			return
		}
		ok := false
		switch t {
		case wire.TCreate:
			ok, scratch = c.onCreate(payload, scratch)
		case wire.TAttach:
			ok, scratch = c.onAttach(payload, scratch)
		case wire.TDrop:
			ok, scratch = c.onDrop(payload, scratch)
		case wire.TInsert:
			ok = c.onInsert(payload, &scratch)
		case wire.TQueryOccupied:
			ok, scratch = c.onQueryOccupied(payload, scratch)
		case wire.TQueryOccupancy:
			ok, scratch = c.onQueryOccupancy(payload, scratch)
		case wire.TCastRay:
			ok, scratch = c.onCastRay(payload, scratch)
		case wire.TSnapshotReq:
			ok, scratch = c.onSnapshot(payload, scratch)
		case wire.TCheckpoint:
			ok, scratch = c.onCheckpoint(payload, scratch)
		default:
			c.writeErr(scratch, 0, wire.CodeBadRequest,
				fmt.Errorf("unexpected frame type 0x%02x", uint8(t)))
			return
		}
		if !ok {
			return
		}
	}
}

// errCode maps tenant-registry errors to wire codes.
func errCode(err error) uint16 {
	switch {
	case errors.Is(err, errTenantExists):
		return wire.CodeTenantExists
	case errors.Is(err, errNoTenant):
		return wire.CodeNoTenant
	case errors.Is(err, errTenantBusy):
		return wire.CodeTenantBusy
	case errors.Is(err, errServerClosed):
		return wire.CodeInternal
	default:
		return wire.CodeBadRequest
	}
}

// setCur re-points the connection's attachment.
func (c *serverConn) setCur(t *tenant) {
	if c.cur == t {
		return
	}
	if c.cur != nil {
		c.cur.refs.Add(-1)
	}
	t.refs.Add(1)
	c.cur = t
}

func (c *serverConn) tenantInfo(scratch []byte, id uint64, t *tenant) []byte {
	payload := wire.AppendTenantInfo(scratch[:0], id, t.name, t.opts,
		wire.ParamsFromVoxel(t.m.Model()))
	c.writeFrame(payload)
	return payload
}

func (c *serverConn) onCreate(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeCreate(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, err := c.s.createTenant(m.Name, m.IfAbsent, m.Opts)
	if err != nil {
		return true, c.writeErr(scratch, m.ID, errCode(err), err)
	}
	c.setCur(t)
	return true, c.tenantInfo(scratch, m.ID, t)
}

func (c *serverConn) onAttach(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeAttach(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, err := c.s.attachTenant(m.Name)
	if err != nil {
		return true, c.writeErr(scratch, m.ID, errCode(err), err)
	}
	c.setCur(t)
	return true, c.tenantInfo(scratch, m.ID, t)
}

func (c *serverConn) onDrop(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeDrop(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	var own int64
	if c.cur != nil && c.cur.name == m.Name {
		own = 1
	}
	if err := c.s.dropTenant(m.Name, own); err != nil {
		return true, c.writeErr(scratch, m.ID, errCode(err), err)
	}
	if own == 1 {
		c.cur = nil // dropped with it; the tenant's counters are gone
	}
	return true, c.writeOK(scratch, m.ID)
}

// onInsert enqueues a scan batch for the applier. This is the one
// dispatch arm that can block: when the window is full it counts a
// stall and waits, which is exactly the backpressure the protocol
// promises. scratch is passed by pointer because the error path may
// grow it.
func (c *serverConn) onInsert(payload []byte, scratch *[]byte) bool {
	m, err := wire.DecodeInsert(payload)
	if err != nil {
		*scratch = c.writeErr(*scratch, 0, wire.CodeBadRequest, err)
		return false
	}
	t := c.cur
	if t == nil {
		*scratch = c.writeErr(*scratch, m.ID, wire.CodeNotAttached,
			errors.New("insert before create/attach"))
		return true
	}
	job := insertJob{t: t, id: m.ID, origin: m.Origin, points: m.Points}
	t.inFlight.Add(1)
	select {
	case c.insertQ <- job:
	default:
		c.s.stalls.Add(1)
		select {
		case c.insertQ <- job:
		case <-c.quit:
			t.inFlight.Add(-1)
			return false
		}
	}
	return true
}

func (c *serverConn) attached(scratch []byte, id uint64) (*tenant, bool) {
	if c.cur == nil {
		c.writeErr(scratch, id, wire.CodeNotAttached,
			errors.New("query before create/attach"))
		return nil, false
	}
	return c.cur, true
}

func (c *serverConn) onQueryOccupied(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeQueryOccupied(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, ok := c.attached(scratch, m.ID)
	if !ok {
		return true, scratch
	}
	bits := make([]byte, (len(m.Points)+7)/8)
	for i, p := range m.Points {
		if t.m.Occupied(p) {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	payload = wire.AppendOccupiedResp(scratch[:0], m.ID, len(m.Points), bits)
	c.writeFrame(payload)
	return true, payload
}

func (c *serverConn) onQueryOccupancy(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeQueryOccupancy(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, ok := c.attached(scratch, m.ID)
	if !ok {
		return true, scratch
	}
	states := t.m.OccupancyBatch(m.Keys, nil)
	cells := make([]wire.CellState, len(states))
	for i, s := range states {
		cells[i] = wire.CellState{LogOdds: s.LogOdds, Known: s.Known}
	}
	payload = wire.AppendOccupancyResp(scratch[:0], m.ID, cells)
	c.writeFrame(payload)
	return true, payload
}

func (c *serverConn) onCastRay(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeCastRay(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, ok := c.attached(scratch, m.ID)
	if !ok {
		return true, scratch
	}
	hit, hitOK := t.m.CastRay(m.Origin, m.Dir, m.MaxRange, m.IgnoreUnknown)
	payload = wire.AppendCastRayResp(scratch[:0], m.ID, hit, hitOK)
	c.writeFrame(payload)
	return true, payload
}

// onSnapshot streams a consistent snapshot chunk-wise: TSnapBegin with
// the occupancy model, runs of wire.SnapChunkLeaves leaves, TSnapEnd
// with the total. The server never holds more than one chunk of
// encoded bytes — downloads of arbitrarily large maps run in constant
// memory here.
func (c *serverConn) onSnapshot(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeSnapshotReq(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, ok := c.attached(scratch, m.ID)
	if !ok {
		return true, scratch
	}
	snap := t.m.Snapshot()
	payload = wire.AppendSnapBegin(scratch[:0], m.ID, wire.ParamsFromVoxel(snap.Params()))
	if c.writeFrame(payload) != nil {
		return false, payload
	}
	var (
		run   = make([]wire.Leaf, 0, wire.SnapChunkLeaves)
		total uint64
		werr  error
	)
	flush := func() bool {
		payload = wire.AppendSnapChunk(payload[:0], m.ID, run)
		werr = c.writeFrame(payload)
		total += uint64(len(run))
		run = run[:0]
		return werr == nil
	}
	snap.Walk(func(l octocache.Leaf) bool {
		run = append(run, wire.Leaf{Key: l.Key, Depth: uint8(l.Depth), LogOdds: l.LogOdds})
		if len(run) == wire.SnapChunkLeaves {
			return flush()
		}
		return true
	})
	if werr == nil && len(run) > 0 {
		flush()
	}
	if werr != nil {
		return false, payload
	}
	payload = wire.AppendSnapEnd(payload[:0], m.ID, total)
	return c.writeFrame(payload) == nil, payload
}

func (c *serverConn) onCheckpoint(payload, scratch []byte) (bool, []byte) {
	m, err := wire.DecodeCheckpoint(payload)
	if err != nil {
		return false, c.writeErr(scratch, 0, wire.CodeBadRequest, err)
	}
	t, ok := c.attached(scratch, m.ID)
	if !ok {
		return true, scratch
	}
	if err := t.m.Checkpoint(); err != nil {
		return true, c.writeErr(scratch, m.ID, wire.CodeInternal, err)
	}
	return true, c.writeOK(scratch, m.ID)
}
