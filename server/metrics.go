package server

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"time"

	"octocache"
)

// MetricsSnapshot is the JSON document the /metrics endpoint serves:
// server-wide counters plus per-tenant map statistics. Field names are
// locked by TestMetricsShape; dashboards may rely on them.
type MetricsSnapshot struct {
	// UptimeSeconds is how long the server has been up.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Connections is the number of currently open client connections.
	Connections int64 `json:"connections"`
	// InsertWindow is the per-connection in-flight insert bound.
	InsertWindow int `json:"insert_window"`
	// BackpressureStalls counts insert frames that found their
	// connection's window full and had to wait — each one is a moment
	// the service pushed back on a client instead of buffering.
	BackpressureStalls int64 `json:"backpressure_stalls"`
	// Tenants maps tenant name to its metrics.
	Tenants map[string]TenantMetrics `json:"tenants"`
}

// TenantMetrics is one tenant's slice of the metrics document.
type TenantMetrics struct {
	// Attached is the number of connections currently attached.
	Attached int64 `json:"attached"`
	// BatchesInFlight is the number of insert batches accepted off the
	// wire but not yet applied, summed over connections. It can never
	// exceed attached connections × the insert window.
	BatchesInFlight int64 `json:"batches_in_flight"`
	// BatchesAcked is the number of insert batches applied and
	// acknowledged since the tenant was created (or recovered).
	BatchesAcked int64 `json:"batches_acked"`
	// Stats is the map's own statistics surface.
	Stats octocache.Stats `json:"stats"`
	// Shards is the per-shard breakdown.
	Shards []octocache.ShardStat `json:"shards"`
}

// Metrics collects a consistent-enough snapshot of the server's
// counters and every tenant's map statistics.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })

	m := MetricsSnapshot{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Connections:        s.nconns.Load(),
		InsertWindow:       s.cfg.Window,
		BackpressureStalls: s.stalls.Load(),
		Tenants:            make(map[string]TenantMetrics, len(tenants)),
	}
	for _, t := range tenants {
		m.Tenants[t.name] = TenantMetrics{
			Attached:        t.refs.Load(),
			BatchesInFlight: t.inFlight.Load(),
			BatchesAcked:    t.acked.Load(),
			Stats:           t.m.Stats(),
			Shards:          t.m.ShardStats(),
		}
	}
	return m
}

// MetricsHandler serves Metrics as JSON; mount it wherever the
// operational surface lives (cmd/mapserver mounts it at /metrics).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
}

// ServeMetrics starts an HTTP listener serving the metrics document at
// /metrics (and a bare 200 at /healthz). It returns once the listener
// is accepting, with a shutdown function.
func (s *Server) ServeMetrics(addr string) (shutdown func(), err error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}
