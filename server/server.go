// Package server hosts octocache maps as a multi-tenant network
// service: one Server owns any number of named map instances (tenants),
// each an independently configured octocache.Map, and speaks the
// internal/wire frame protocol over plain TCP to the typed client in
// octocache/client.
//
// The service model:
//
//   - Tenants are created, attached, and dropped over the wire. Each
//     tenant is a sharded octocache.Map (the server rounds Shards up to
//     at least 1 so every tenant is safe under concurrent connections),
//     with the backend, pipeline mode, trace mode, cache shape, and
//     durability the creating client chose.
//   - Clients stream scan batches in. Each connection runs one applier
//     goroutine behind a bounded queue (Config.Window batches): when
//     the applier falls behind, the queue fills, the connection's read
//     loop blocks, TCP flow control pushes back, and the client's own
//     insert window makes Insert block — backpressure end to end, with
//     no unbounded server-side buffering. Queue-full events are counted
//     and exposed on /metrics.
//   - Queries (point occupancy, key-batch occupancy, ray casts) are
//     answered on the read loop and multiplex with in-flight inserts on
//     the same connection; sharded maps make them safe against every
//     other connection's traffic.
//   - Snapshots stream out chunk-wise: the server walks a consistent
//     snapshot leaf-run by leaf-run, so a download never materializes
//     the serialized byte stream in memory, and the client's
//     canonical rebuild yields bytes bit-identical to Map.WriteTo.
//   - Durable tenants (created with Durable=true and a server DataDir)
//     survive server restarts: each keeps a manifest next to its WAL,
//     and New recovers every manifested tenant via octocache.Recover.
//
// Per-tenant Stats/ShardStats plus server counters are served as JSON
// by the /metrics handler (MetricsHandler / ServeMetrics).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"octocache"
	"octocache/internal/wire"
)

// DefaultWindow is the per-connection in-flight insert bound when
// Config.Window is zero.
const DefaultWindow = 32

// Config configures a Server. The zero value serves non-durable
// tenants with the default window.
type Config struct {
	// DataDir is where durable tenants keep their WAL, snapshots, and
	// manifest (one subdirectory per tenant). Empty disables durable
	// tenants; creating one then fails.
	DataDir string
	// Window bounds each connection's queued-but-unapplied insert
	// batches; the read loop blocks when the queue is full, pushing
	// back on the client. 0 means DefaultWindow.
	Window int
}

// Server is a multi-tenant octocache map service. Create with New,
// serve with Serve/ListenAndServe, inspect with MetricsSnapshot or the
// /metrics HTTP handler, and stop with Close.
type Server struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	tenants map[string]*tenant
	lns     []net.Listener
	conns   map[*serverConn]struct{}
	closed  bool

	nconns atomic.Int64
	stalls atomic.Int64 // insert-queue-full events (backpressure)
}

// tenant is one named map instance plus its service-side counters.
type tenant struct {
	name string
	m    *octocache.Map
	opts wire.TenantOptions // effective (defaults resolved), as manifested

	refs     atomic.Int64 // attached connections
	inFlight atomic.Int64 // queued-but-unapplied insert batches
	acked    atomic.Int64 // applied-and-acknowledged insert batches
}

// New creates a Server and, when cfg.DataDir holds tenant manifests
// from a previous run, recovers every durable tenant it finds — the
// restart path: recovery replays each tenant's WAL over its last
// consistent-cut snapshot before the listener ever accepts a client.
func New(cfg Config) (*Server, error) {
	if cfg.Window < 0 {
		return nil, fmt.Errorf("server: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		tenants: make(map[string]*tenant),
		conns:   make(map[*serverConn]struct{}),
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
		if err := s.recoverTenants(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recoverTenants restores every tenant manifested under DataDir.
func (s *Server) recoverTenants() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("server: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		wopts, err := readManifest(s.tenantDir(name))
		if errors.Is(err, os.ErrNotExist) {
			continue // not a tenant dir
		}
		if err != nil {
			return fmt.Errorf("server: tenant %q: %w", name, err)
		}
		t, err := s.openTenant(name, wopts)
		if err != nil {
			return fmt.Errorf("server: recovering tenant %q: %w", name, err)
		}
		s.tenants[name] = t
	}
	return nil
}

func (s *Server) tenantDir(name string) string { return filepath.Join(s.cfg.DataDir, name) }

// manifestName holds a durable tenant's creation options next to its
// WAL, so a restarted server knows how to recover it.
const manifestName = "tenant.json"

func readManifest(dir string) (wire.TenantOptions, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return wire.TenantOptions{}, err
	}
	var o wire.TenantOptions
	if err := json.Unmarshal(data, &o); err != nil {
		return wire.TenantOptions{}, fmt.Errorf("manifest: %w", err)
	}
	return o, nil
}

func writeManifest(dir string, o wire.TenantOptions) error {
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// validTenantName keeps tenant names usable as directory names and log
// keys: non-empty, at most 128 bytes, letters/digits/dot/dash/
// underscore, not starting with a dot.
func validTenantName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("tenant name must be 1..128 bytes")
	}
	if name[0] == '.' {
		return fmt.Errorf("tenant name must not start with a dot")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
		default:
			return fmt.Errorf("tenant name %q contains %q (want [A-Za-z0-9._-])", name, r)
		}
	}
	return nil
}

// resolveOptions turns wire options into validated octocache.Options,
// filling defaults and parsing the enum spellings through the public
// round-trip constructors.
func (s *Server) resolveOptions(name string, o wire.TenantOptions) (octocache.Options, wire.TenantOptions, error) {
	fail := func(err error) (octocache.Options, wire.TenantOptions, error) {
		return octocache.Options{}, wire.TenantOptions{}, err
	}
	if o.Mode == "" {
		o.Mode = octocache.ModeParallel.String()
	}
	if o.Backend == "" {
		o.Backend = octocache.BackendOctree.String()
	}
	if o.Trace == "" {
		o.Trace = octocache.TraceDDA.String()
	}
	if o.Sync == "" {
		o.Sync = octocache.SyncNone.String()
	}
	mode, err := octocache.ParseMode(o.Mode)
	if err != nil {
		return fail(err)
	}
	backend, err := octocache.ParseBackend(o.Backend)
	if err != nil {
		return fail(err)
	}
	trace, err := octocache.ParseTraceMode(o.Trace)
	if err != nil {
		return fail(err)
	}
	sync, err := octocache.ParseSyncPolicy(o.Sync)
	if err != nil {
		return fail(err)
	}
	// Every tenant must be safe under concurrent connections, so the
	// single-driver pipelines (Shards == 0) are not offered remotely.
	if o.Shards < 1 {
		o.Shards = 1
	}
	opts := octocache.Options{
		Resolution:   o.Resolution,
		MaxRange:     o.MaxRange,
		Mode:         mode,
		Backend:      backend,
		Trace:        trace,
		Shards:       int(o.Shards),
		CacheBuckets: int(o.CacheBuckets),
		CacheTau:     int(o.CacheTau),
	}
	if o.Durable {
		if s.cfg.DataDir == "" {
			return fail(fmt.Errorf("durable tenants need a server -data-dir"))
		}
		opts.Durable = octocache.Durable{
			Dir:           s.tenantDir(name),
			Sync:          sync,
			SnapshotEvery: int(o.SnapshotEvery),
		}
	}
	return opts, o, nil
}

// openTenant builds (or, durable, recovers) the tenant's map.
func (s *Server) openTenant(name string, wopts wire.TenantOptions) (*tenant, error) {
	opts, wopts, err := s.resolveOptions(name, wopts)
	if err != nil {
		return nil, err
	}
	var m *octocache.Map
	if wopts.Durable {
		m, err = octocache.Recover(s.tenantDir(name), opts)
	} else {
		m, err = octocache.New(opts)
	}
	if err != nil {
		return nil, err
	}
	wopts.Shards = uint16(m.Shards()) // effective (rounded) count
	return &tenant{name: name, m: m, opts: wopts}, nil
}

// createTenant implements TCreate. Under ifAbsent an existing tenant is
// returned as-is (its options win; the caller learns them from the
// TenantInfo response).
func (s *Server) createTenant(name string, ifAbsent bool, wopts wire.TenantOptions) (*tenant, error) {
	if err := validTenantName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errServerClosed
	}
	if t, ok := s.tenants[name]; ok {
		if ifAbsent {
			return t, nil
		}
		return nil, errTenantExists
	}
	if wopts.Durable {
		if s.cfg.DataDir == "" {
			return nil, fmt.Errorf("durable tenants need a server -data-dir")
		}
		dir := s.tenantDir(name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := writeManifest(dir, wopts); err != nil {
			return nil, err
		}
	}
	t, err := s.openTenant(name, wopts)
	if err != nil {
		if wopts.Durable {
			os.RemoveAll(s.tenantDir(name))
		}
		return nil, err
	}
	// Persist the effective options (defaults resolved, shards rounded)
	// so recovery reopens the map with exactly the shape it has now.
	if wopts.Durable {
		if err := writeManifest(s.tenantDir(name), t.opts); err != nil {
			t.m.Close()
			return nil, err
		}
	}
	s.tenants[name] = t
	return t, nil
}

var (
	errServerClosed = errors.New("server is shutting down")
	errTenantExists = errors.New("tenant already exists")
	errNoTenant     = errors.New("no such tenant")
	errTenantBusy   = errors.New("tenant is attached by other connections")
)

// attachTenant implements TAttach.
func (s *Server) attachTenant(name string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, errNoTenant
	}
	return t, nil
}

// dropTenant implements TDrop: the tenant is closed, forgotten, and —
// durable — its directory deleted. ownRefs is how many attachments the
// requesting connection itself holds on the tenant (those don't count
// as "busy").
func (s *Server) dropTenant(name string, ownRefs int64) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return errNoTenant
	}
	if t.refs.Load() > ownRefs {
		s.mu.Unlock()
		return errTenantBusy
	}
	delete(s.tenants, name)
	s.mu.Unlock()

	t.m.Close()
	if t.opts.Durable && s.cfg.DataDir != "" {
		if err := os.RemoveAll(s.tenantDir(name)); err != nil {
			return err
		}
	}
	return nil
}

// ListenAndServe listens on a TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (or a permanent accept
// failure) and handles each on its own goroutines. It blocks; run it on
// a dedicated goroutine to serve several listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errServerClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		cn := newServerConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[cn] = struct{}{}
		s.mu.Unlock()
		s.nconns.Add(1)
		go cn.run()
	}
}

// forget removes a finished connection from the registry.
func (s *Server) forget(cn *serverConn) {
	s.mu.Lock()
	delete(s.conns, cn)
	s.mu.Unlock()
	s.nconns.Add(-1)
}

// Close stops the listeners, closes every connection, and closes every
// tenant map (durable tenants checkpoint on Close, so a restarted
// server replays nothing after a clean shutdown). Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	s.lns = nil
	conns := make([]*serverConn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	var first error
	for _, ln := range lns {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, cn := range conns {
		cn.shutdown()
	}
	for _, cn := range conns {
		cn.wait()
	}
	for _, t := range tenants {
		if err := t.m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
