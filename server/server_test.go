package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"octocache"
	"octocache/client"
	"octocache/server"
)

// startServer brings up a service on a loopback port and returns its
// dial address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// clusterScans builds deterministic scan batches around a center: each
// batch is one origin plus points scattered within ~2m. Distinct
// centers far enough apart give spatially disjoint voxel footprints,
// which makes concurrent ingest order-independent (clamped log-odds
// accumulation commutes only per voxel).
func clusterScans(seed int64, center octocache.Vec3, batches, pts int) [][]octocache.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]octocache.Vec3, batches)
	for b := range out {
		scan := make([]octocache.Vec3, pts)
		for i := range scan {
			scan[i] = octocache.V(
				center.X+rng.Float64()*4-2,
				center.Y+rng.Float64()*4-2,
				center.Z+rng.Float64()*2,
			)
		}
		out[b] = scan
	}
	return out
}

// TestServiceEndToEnd is the protocol's acceptance test: two tenants,
// two concurrent producers per tenant (spatially disjoint halves),
// concurrent queriers, a mid-stream snapshot download — and the final
// downloaded snapshot must be bit-identical to Map.WriteTo of a local
// map fed the same scans. Run it under -race: the point is that all of
// this multiplexes safely.
func TestServiceEndToEnd(t *testing.T) {
	_, addr := startServer(t, server.Config{Window: 8})

	tenants := []struct {
		name string
		opts client.MapOptions
	}{
		{"warehouse", client.MapOptions{Resolution: 0.1, Shards: 2, CacheBuckets: 1 << 10}},
		{"yard", client.MapOptions{Resolution: 0.1, Shards: 2, Backend: octocache.BackendGrid, Mode: octocache.ModeSerial}},
	}
	centers := []octocache.Vec3{octocache.V(0, 0, 1), octocache.V(8, 8, 1)}
	const batches, pts = 12, 120

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for ti, tn := range tenants {
		for half, center := range centers {
			wg.Add(1)
			go func(ti, half int, tn struct {
				name string
				opts client.MapOptions
			}, center octocache.Vec3) {
				defer wg.Done()
				c, err := client.Dial(addr, client.Config{Window: 4})
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				if _, err := c.Open(tn.name, tn.opts); err != nil {
					errs <- fmt.Errorf("open %s: %w", tn.name, err)
					return
				}
				scans := clusterScans(int64(100*ti+half), center, batches, pts)
				for _, scan := range scans {
					if err := c.Insert(center, scan); err != nil {
						errs <- fmt.Errorf("insert %s: %w", tn.name, err)
						return
					}
				}
				if err := c.Flush(); err != nil {
					errs <- fmt.Errorf("flush %s: %w", tn.name, err)
				}
			}(ti, half, tn, center)
		}
	}
	// Concurrent queriers: correctness of the answers is covered by the
	// final snapshot comparison; here they must simply never error or
	// race while producers stream.
	for _, tn := range tenants {
		wg.Add(1)
		go func(name string, opts client.MapOptions) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Open(name, opts); err != nil {
				errs <- err
				return
			}
			probes := clusterScans(7, centers[0], 1, 32)[0]
			for i := 0; i < 25; i++ {
				if _, err := c.OccupiedBatch(probes); err != nil {
					errs <- fmt.Errorf("query %s: %w", name, err)
					return
				}
				if _, _, err := c.CastRay(octocache.V(0, 0, 1), octocache.V(1, 0, 0), 5, false); err != nil {
					errs <- fmt.Errorf("castray %s: %w", name, err)
					return
				}
			}
			// Mid-stream download: must parse as a consistent snapshot
			// whatever subset of batches it observes.
			if _, err := c.Snapshot(); err != nil {
				errs <- fmt.Errorf("mid-stream snapshot %s: %w", name, err)
			}
		}(tn.name, tn.opts)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Rebuild each tenant locally from the same scans and require the
	// downloaded snapshot bytes to match Map.WriteTo bit for bit.
	for ti, tn := range tenants {
		local := octocache.MustNew(octocache.Options{
			Resolution:   tn.opts.Resolution,
			Shards:       tn.opts.Shards,
			Backend:      tn.opts.Backend,
			Mode:         tn.opts.Mode,
			CacheBuckets: tn.opts.CacheBuckets,
		})
		for half, center := range centers {
			for _, scan := range clusterScans(int64(100*ti+half), center, batches, pts) {
				if err := local.Insert(center, scan); err != nil {
					t.Fatal(err)
				}
			}
		}
		var want bytes.Buffer
		if _, err := local.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		local.Close()

		c, err := client.Dial(addr, client.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Attach(tn.name); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := c.WriteSnapshot(&got); err != nil {
			t.Fatal(err)
		}
		c.Close()
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("tenant %s: downloaded snapshot differs from local build (%d vs %d bytes)",
				tn.name, got.Len(), want.Len())
		}
	}
}

// TestBackpressure pins the protocol's flow-control promise: with a
// server window of 1 and a client window larger than it, a fast sender
// observably stalls the server's read loop (the /metrics counter), and
// the tenant's in-flight gauge never exceeds what the window permits.
func TestBackpressure(t *testing.T) {
	const window = 1
	s, addr := startServer(t, server.Config{Window: window})

	c, err := client.Dial(addr, client.Config{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// OctoMap mode applies every voxel straight to the octree — the
	// slowest pipeline, so the applier reliably lags the read loop.
	if _, err := c.Create("slow", client.MapOptions{Resolution: 0.05, Mode: octocache.ModeOctoMap}); err != nil {
		t.Fatal(err)
	}
	scans := clusterScans(3, octocache.V(0, 0, 1), 24, 400)
	maxInFlight := int64(0)
	for _, scan := range scans {
		if err := c.Insert(octocache.V(0, 0, 1), scan); err != nil {
			t.Fatal(err)
		}
		if got := s.Metrics().Tenants["slow"].BatchesInFlight; got > maxInFlight {
			maxInFlight = got
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.BackpressureStalls == 0 {
		t.Fatal("no backpressure stalls recorded; the insert window is not exerting backpressure")
	}
	// Queue capacity + the batch being applied + the one the read loop
	// is holding while it waits.
	if limit := int64(window + 2); maxInFlight > limit {
		t.Fatalf("in-flight batches reached %d, window bounds it to %d", maxInFlight, limit)
	}
	if got := m.Tenants["slow"].BatchesAcked; got != int64(len(scans)) {
		t.Fatalf("acked %d batches, sent %d", got, len(scans))
	}
}

// TestDurableRestart exercises the service restart path: a durable
// tenant's scans must survive server shutdown and be recovered —
// bit-identically — by a fresh server on the same data dir.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	s, addr := startServer(t, server.Config{DataDir: dir})

	opts := client.MapOptions{Resolution: 0.1, Durable: true, Sync: octocache.SyncEveryBatch}
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("persist", opts); err != nil {
		t.Fatal(err)
	}
	center := octocache.V(0, 0, 1)
	scans := clusterScans(5, center, 6, 80)
	for _, scan := range scans {
		if err := c.Insert(center, scan); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if _, err := c.WriteSnapshot(&before); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh server on the same data dir must recover the tenant.
	_, addr2 := startServer(t, server.Config{DataDir: dir})
	c2, err := client.Dial(addr2, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	info, err := c2.Attach("persist")
	if err != nil {
		t.Fatalf("recovered server lost tenant: %v", err)
	}
	if !info.Durable || info.Resolution != 0.1 {
		t.Fatalf("recovered tenant shape wrong: %+v", info)
	}
	var after bytes.Buffer
	if _, err := c2.WriteSnapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("recovered snapshot differs: %d vs %d bytes", after.Len(), before.Len())
	}
	// Drop must delete the tenant's directory.
	if err := c2.Drop("persist"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Attach("persist"); err == nil {
		t.Fatal("dropped tenant still attachable")
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "persist", "*")); len(matches) != 0 {
		t.Fatalf("dropped tenant left files: %v", matches)
	}
}

// TestTenantLifecycleErrors pins the error codes of the tenant verbs.
func TestTenantLifecycleErrors(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wantCode := func(err error, code uint16, what string) {
		t.Helper()
		var serr *client.ServerError
		if !errors.As(err, &serr) || serr.Code != code {
			t.Fatalf("%s: got %v, want server error code %d", what, err, code)
		}
	}

	// Data verbs before attach.
	if err := c.Insert(octocache.V(0, 0, 0), []octocache.Vec3{octocache.V(1, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	wantCode(c.Flush(), client.CodeNotAttached, "insert before attach")
	_, err = c.OccupiedBatch([]octocache.Vec3{octocache.V(0, 0, 0)})
	wantCode(err, client.CodeNotAttached, "query before attach")

	// Attach to a tenant that does not exist.
	_, err = c.Attach("ghost")
	wantCode(err, client.CodeNoTenant, "attach missing")

	// Create, then create again without if-absent.
	if _, err := c.Create("a", client.MapOptions{Resolution: 0.1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Create("a", client.MapOptions{Resolution: 0.1})
	wantCode(err, client.CodeTenantExists, "duplicate create")

	// Durable tenants need a data dir on this server.
	_, err = c.Create("d", client.MapOptions{Resolution: 0.1, Durable: true})
	wantCode(err, client.CodeBadRequest, "durable without data dir")

	// Bad names and bad options are rejected.
	_, err = c.Create("../escape", client.MapOptions{Resolution: 0.1})
	wantCode(err, client.CodeBadRequest, "path-escaping name")
	_, err = c.Create("nores", client.MapOptions{})
	wantCode(err, client.CodeBadRequest, "zero resolution")

	// Drop while another connection is attached.
	c2, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Attach("a"); err != nil {
		t.Fatal(err)
	}
	wantCode(c.Drop("a"), client.CodeTenantBusy, "drop busy tenant")
	c2.Close()
	// The server detaches c2 asynchronously when its connection dies;
	// retry until the drop goes through.
	for i := 0; ; i++ {
		err := c.Drop("a")
		if err == nil {
			break
		}
		var serr *client.ServerError
		if !errors.As(err, &serr) || serr.Code != client.CodeTenantBusy || i > 200 {
			t.Fatalf("drop after detach: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOpenAttachesExisting pins Open's create-or-attach contract: the
// existing tenant's shape wins over the caller's options.
func TestOpenAttachesExisting(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("m", client.MapOptions{Resolution: 0.25, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Open("m", client.MapOptions{Resolution: 0.5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Resolution != 0.25 || info.Shards != 4 {
		t.Fatalf("Open did not surface the existing shape: %+v", info)
	}
}

// TestMetricsEndpoint exercises the HTTP surface end to end and pins
// the top-level JSON field names.
func TestMetricsEndpoint(t *testing.T) {
	s, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("obs", client.MapOptions{Resolution: 0.1, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(octocache.V(0, 0, 1), []octocache.Vec3{octocache.V(2, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var doc struct {
		UptimeSeconds      float64 `json:"uptime_seconds"`
		Connections        int64   `json:"connections"`
		InsertWindow       int     `json:"insert_window"`
		BackpressureStalls int64   `json:"backpressure_stalls"`
		Tenants            map[string]struct {
			Attached     int64           `json:"attached"`
			BatchesAcked int64           `json:"batches_acked"`
			Stats        octocache.Stats `json:"stats"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.Bytes())
	}
	obs, ok := doc.Tenants["obs"]
	if !ok {
		t.Fatalf("tenant missing from metrics: %s", rec.Body.Bytes())
	}
	if obs.BatchesAcked != 1 || obs.Attached != 1 {
		t.Fatalf("tenant counters wrong: %+v", obs)
	}
	if doc.InsertWindow != server.DefaultWindow || doc.Connections != 1 {
		t.Fatalf("server counters wrong: %s", rec.Body.Bytes())
	}
	if obs.Stats.Shards != 2 {
		t.Fatalf("tenant stats not surfaced: %+v", obs.Stats)
	}
}
