package octocache

import (
	"encoding/json"
	"testing"
	"time"
)

// TestStatsJSONShape locks the marshaled encoding of the nested Stats
// surface: the server's /metrics endpoint and any dashboard built on it
// read exactly these field names. A failure here means a wire-visible
// breaking change — rename deliberately or not at all.
func TestStatsJSONShape(t *testing.T) {
	s := Stats{
		Cache:      CacheStats{HitRate: 0.5, Hits: 10, Inserts: 20, Evicted: 5},
		Pipeline:   PipelineStats{Batches: 2, VoxelsTraced: 100, VoxelsToOctree: 50},
		Arena:      ArenaStats{LiveNodes: 9, FreeSlots: 1, Capacity: 10, Bytes: 240},
		Compaction: CompactionStats{Runs: 1, SlotsReclaimed: 3, LastDuration: 2 * time.Microsecond},
		Shards:     4,
		Backend:    BackendGrid,
		Window: WindowStats{
			Enabled: true, ResidentTiles: 7, SpilledTiles: 3,
			Evictions: 11, Reloads: 4, BytesOnDisk: 4096, MaxPause: time.Millisecond,
		},
		Durable: DurableStats{
			Enabled: true, Seq: 42, LastSnapshotSeq: 40, WALBytes: 128,
			WALBatches: 42, Snapshots: 2, ReplayedBatches: 0, BytesOnDisk: 8192,
		},
	}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{` +
		`"cache":{"hit_rate":0.5,"hits":10,"inserts":20,"evicted":5},` +
		`"pipeline":{"batches":2,"voxels_traced":100,"voxels_to_octree":50},` +
		`"arena":{"live_nodes":9,"free_slots":1,"capacity":10,"bytes":240},` +
		`"compaction":{"runs":1,"slots_reclaimed":3,"last_duration_ns":2000},` +
		`"shards":4,` +
		`"backend":"grid",` +
		`"window":{"enabled":true,"resident_tiles":7,"spilled_tiles":3,"evictions":11,"reloads":4,"bytes_on_disk":4096,"max_pause_ns":1000000},` +
		`"durable":{"enabled":true,"seq":42,"last_snapshot_seq":40,"wal_bytes":128,"wal_batches":42,"snapshots":2,"replayed_batches":0,"bytes_on_disk":8192}` +
		`}`
	if string(got) != want {
		t.Fatalf("Stats JSON shape changed:\n got: %s\nwant: %s", got, want)
	}
}

// TestShardStatJSONShape locks the per-shard encoding the same way.
func TestShardStatJSONShape(t *testing.T) {
	s := ShardStat{Shard: 3, Backend: BackendOctree, QueueDepth: 12}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{` +
		`"shard":3,` +
		`"backend":"octree",` +
		`"arena":{"live_nodes":0,"free_slots":0,"capacity":0,"bytes":0},` +
		`"queue_depth":12,` +
		`"cache":{"hit_rate":0,"hits":0,"inserts":0,"evicted":0},` +
		`"compaction":{"runs":0,"slots_reclaimed":0,"last_duration_ns":0},` +
		`"window":{"enabled":false,"resident_tiles":0,"spilled_tiles":0,"evictions":0,"reloads":0,"bytes_on_disk":0,"max_pause_ns":0},` +
		`"durable":{"enabled":false,"seq":0,"last_snapshot_seq":0,"wal_bytes":0,"wal_batches":0,"snapshots":0,"replayed_batches":0,"bytes_on_disk":0}` +
		`}`
	if string(got) != want {
		t.Fatalf("ShardStat JSON shape changed:\n got: %s\nwant: %s", got, want)
	}
}

// TestBackendJSONRoundTrip pins the string form both ways.
func TestBackendJSONRoundTrip(t *testing.T) {
	for _, b := range []Backend{BackendOctree, BackendGrid} {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var got Backend
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != b {
			t.Fatalf("round trip: %v -> %s -> %v", b, data, got)
		}
	}
	var b Backend
	if err := json.Unmarshal([]byte(`"voxelhash"`), &b); err == nil {
		t.Fatal("unknown backend string unmarshaled without error")
	}
	if err := json.Unmarshal([]byte(`1`), &b); err == nil {
		t.Fatal("numeric backend unmarshaled without error")
	}
}

// TestEnumRoundTrips pins Parse*(v.String()) == v for all four public
// enums, and that parsers reject junk — the property the wire handshake
// and every cmd/ flag surface rely on.
func TestEnumRoundTrips(t *testing.T) {
	for _, b := range []Backend{BackendOctree, BackendGrid} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("backend %v: ParseBackend(%q) = %v, %v", b, b.String(), got, err)
		}
	}
	for _, m := range []Mode{ModeParallel, ModeSerial, ModeOctoMap} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("mode %v: ParseMode(%q) = %v, %v", m, m.String(), got, err)
		}
	}
	for _, tr := range []TraceMode{TraceDDA, TraceBoundary} {
		got, err := ParseTraceMode(tr.String())
		if err != nil || got != tr {
			t.Fatalf("trace %v: ParseTraceMode(%q) = %v, %v", tr, tr.String(), got, err)
		}
	}
	for _, sp := range []SyncPolicy{SyncNone, SyncEveryBatch} {
		got, err := ParseSyncPolicy(sp.String())
		if err != nil || got != sp {
			t.Fatalf("sync %v: ParseSyncPolicy(%q) = %v, %v", sp, sp.String(), got, err)
		}
	}
	if _, err := ParseBackend("vdb"); err == nil {
		t.Fatal("ParseBackend accepted junk")
	}
	if _, err := ParseMode("async"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
	if _, err := ParseTraceMode("bresenham"); err == nil {
		t.Fatal("ParseTraceMode accepted junk")
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Fatal("ParseSyncPolicy accepted junk")
	}
}

// TestOccupancyBatch pins the batched key query against the scalar
// path, on both a sharded and a single-driver map.
func TestOccupancyBatch(t *testing.T) {
	for _, shards := range []int{0, 4} {
		m := MustNew(Options{Resolution: 0.1, Shards: shards, Mode: ModeSerial})
		origin := V(0, 0, 0)
		pts := []Vec3{V(1, 0, 0), V(0, 1, 0), V(0.5, 0.5, 0.5), V(-1, -1, 0)}
		if err := m.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		var keys []Key
		for _, p := range append(pts, V(9, 9, 9)) { // last one never observed
			k, ok := m.CoordToKey(p)
			if !ok {
				t.Fatalf("CoordToKey(%v) out of range", p)
			}
			keys = append(keys, k)
		}
		got := m.OccupancyBatch(keys, nil)
		if len(got) != len(keys) {
			t.Fatalf("shards=%d: got %d answers for %d keys", shards, len(got), len(keys))
		}
		for i, k := range keys {
			l, known := m.OccupancyKey(k)
			if got[i] != (CellState{LogOdds: l, Known: known}) {
				t.Fatalf("shards=%d key %d: batch %+v, scalar (%v,%v)", shards, i, got[i], l, known)
			}
		}
		if !got[0].Known || got[len(got)-1].Known {
			t.Fatalf("shards=%d: endpoint should be known, far voxel unknown: %+v", shards, got)
		}
		m.Close()
	}
}
