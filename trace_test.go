package octocache

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestTraceModeConsistency is the map-level gate on the boundary trace
// mode: every backend × pipeline mode × shard count × trace
// configuration fed the same scan stream must answer Occupancy,
// OccupiedKey, and CastRay bit-identically to a serial DDA reference
// after every batch, and serialize to the exact same bytes once closed.
//
// The reference runs TraceDDA with DedupRays: boundary batches are
// inherently deduplicated (occupied-wins), so deduplicated DDA is the
// stream they are observation-set-equal to — per-voxel map state then
// matches exactly, whatever order the observations arrive in. The DDA
// fan rows (TraceWorkers > 1) check the parallel trace stage reproduces
// the serial stream bit-for-bit.
func TestTraceModeConsistency(t *testing.T) {
	ref := MustNew(Options{
		Resolution: 0.1, Mode: ModeSerial,
		DedupRays: true, CacheBuckets: 1 << 10,
	})

	type entry struct {
		name string
		m    *Map
	}
	var maps []entry
	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeOctoMap} {
			for _, shards := range []int{0, 1, 4} {
				for _, tc := range []struct {
					label   string
					trace   TraceMode
					workers int
					dedup   bool
				}{
					{"boundary", TraceBoundary, 0, false},
					{"boundary-w3", TraceBoundary, 3, false},
					{"boundary-rt", TraceBoundary, 0, true},
					{"dda-fan3", TraceDDA, 3, true},
				} {
					opts := Options{
						Resolution: 0.1, Mode: mode, Shards: shards,
						Backend: backend, CacheBuckets: 1 << 10,
						Trace: tc.trace, TraceWorkers: tc.workers, DedupRays: tc.dedup,
					}
					maps = append(maps, entry{
						name: fmt.Sprintf("%v/mode=%d/shards=%d/%s", backend, mode, shards, tc.label),
						m:    MustNew(opts),
					})
				}
			}
		}
	}

	// A drifting origin shifts the boundary tracer's per-scan bounding
	// box every batch, exercising plane reuse across differing extents.
	rng := rand.New(rand.NewSource(29))
	var probes []Vec3
	for batch := 0; batch < 4; batch++ {
		origin := V(0.4*float64(batch), 0.3*float64(batch), 0.5)
		var pts []Vec3
		for j := 0; j < 120; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*2.5
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		if err := ref.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		for _, e := range maps {
			if err := e.m.Insert(origin, pts); err != nil {
				t.Fatalf("%s: Insert: %v", e.name, err)
			}
		}
		probes = append(probes, pts[:20]...)
		probes = append(probes, origin)
		for _, p := range probes {
			lw, kw := ref.Occupancy(p)
			kref, inMap := ref.CoordToKey(p)
			for _, e := range maps {
				if lg, kg := e.m.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("batch %d %s: Occupancy(%v) = (%v,%v), ref (%v,%v)",
						batch, e.name, p, lg, kg, lw, kw)
				}
				if inMap && e.m.OccupiedKey(kref) != ref.OccupiedKey(kref) {
					t.Fatalf("batch %d %s: OccupiedKey(%v) disagrees", batch, e.name, kref)
				}
			}
		}
		for _, dir := range []Vec3{V(1, 0.2, 0), V(-0.7, 1, 0.1), V(0, -1, -0.2)} {
			hw, okw := ref.CastRay(origin, dir, 8, true)
			for _, e := range maps {
				if hg, okg := e.m.CastRay(origin, dir, 8, true); okg != okw || hg != hw {
					t.Fatalf("batch %d %s: CastRay(%v) = (%v,%v), ref (%v,%v)",
						batch, e.name, dir, hg, okg, hw, okw)
				}
			}
		}
	}

	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for _, e := range maps {
		if err := e.m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", e.name, err)
		}
		var got bytes.Buffer
		if _, err := e.m.WriteTo(&got); err != nil {
			t.Fatalf("%s: WriteTo: %v", e.name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: serialization differs from serial DDA+dedup reference", e.name)
		}
	}
}

// TestTraceModeWindowedDurable composes the boundary tracer with the
// orthogonal persistence machinery: a windowed map and a durable map in
// boundary mode must serialize bit-identically to the DDA+dedup
// reference over a drifting traverse.
func TestTraceModeWindowedDurable(t *testing.T) {
	ref := MustNew(Options{
		Resolution: 0.1, Mode: ModeSerial,
		DedupRays: true, CacheBuckets: 1 << 10,
	})
	win := MustNew(Options{
		Resolution: 0.1, Mode: ModeSerial, Trace: TraceBoundary,
		CacheBuckets: 1 << 10,
		Window:       Window{Radius: 2, TileDepth: 12, Dir: t.TempDir()},
	})
	dur := MustNew(Options{
		Resolution: 0.1, Mode: ModeSerial, Trace: TraceBoundary,
		CacheBuckets: 1 << 10,
		Durable:      Durable{Dir: t.TempDir()},
	})

	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		origin := V(1.5*float64(i), 0, 0.8)
		var pts []Vec3
		for j := 0; j < 100; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 0.5 + rng.Float64()*2
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		for _, m := range []*Map{ref, win, dur} {
			if err := m.Insert(origin, pts); err != nil {
				t.Fatal(err)
			}
		}
	}
	var want bytes.Buffer
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*Map{"windowed": win, "durable": dur} {
		if err := m.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got bytes.Buffer
		if _, err := m.WriteTo(&got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s boundary map serializes differently from DDA+dedup reference", name)
		}
	}
}
