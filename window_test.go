package octocache

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// windowOpts arms a test map with 0.8 m tiles (depth 16 key space at
// 0.1 m resolution; tile depth 13 → 8 voxels per axis).
func windowOpts(t *testing.T, base Options, radius int) Options {
	t.Helper()
	base.Window = Window{Radius: radius, TileDepth: 13, Dir: t.TempDir()}
	return base
}

// TestWindowedMatrixConsistency arms every backend × mode × shard-count
// combination with a window wide enough to hold the whole scene: the
// policy machinery runs on every insert (residency tracking, recenter
// scans), yet nothing may change — queries stay bit-identical to the
// unwindowed serial reference after every batch, and the closed maps
// serialize to the exact same bytes.
func TestWindowedMatrixConsistency(t *testing.T) {
	ref := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})

	type entry struct {
		name string
		m    *Map
	}
	var maps []entry
	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeOctoMap} {
			for _, shards := range []int{0, 1, 2, 8} {
				opts := windowOpts(t, Options{
					Resolution: 0.1, Mode: mode, Shards: shards,
					Backend: backend, CacheBuckets: 1 << 10,
				}, 16)
				maps = append(maps, entry{
					name: fmt.Sprintf("%v/mode=%d/shards=%d", backend, mode, shards),
					m:    MustNew(opts),
				})
			}
		}
	}

	origin := V(0, 0, 0.5)
	rng := rand.New(rand.NewSource(17))
	var probes []Vec3
	for batch := 0; batch < 4; batch++ {
		var pts []Vec3
		for j := 0; j < 120; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*2.5
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		if err := ref.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		for _, e := range maps {
			if err := e.m.Insert(origin, pts); err != nil {
				t.Fatalf("%s: Insert: %v", e.name, err)
			}
		}
		probes = append(probes, pts[:20]...)
		for _, p := range probes {
			lw, kw := ref.Occupancy(p)
			for _, e := range maps {
				if lg, kg := e.m.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("batch %d %s: Occupancy(%v) = (%v,%v), ref (%v,%v)",
						batch, e.name, p, lg, kg, lw, kw)
				}
			}
		}
		for _, dir := range []Vec3{V(1, 0.2, 0), V(-0.7, 1, 0.1), V(0, -1, -0.2)} {
			hw, okw := ref.CastRay(origin, dir, 8, true)
			for _, e := range maps {
				if hg, okg := e.m.CastRay(origin, dir, 8, true); okg != okw || hg != hw {
					t.Fatalf("batch %d %s: CastRay(%v) diverged", batch, e.name, dir)
				}
			}
		}
	}

	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for _, e := range maps {
		if st := e.m.Stats(); !st.Window.Enabled {
			t.Errorf("%s: Stats().Window not enabled", e.name)
		}
		if err := e.m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", e.name, err)
		}
		var got bytes.Buffer
		if _, err := e.m.WriteTo(&got); err != nil {
			t.Fatalf("%s: WriteTo: %v", e.name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: serialization differs from unwindowed reference", e.name)
		}
	}
}

// traverseScan is a forward ring scan from a moving origin.
func traverseScan(rng *rand.Rand, origin Vec3, n int) []Vec3 {
	pts := make([]Vec3, 0, n)
	for j := 0; j < n; j++ {
		ang := rng.Float64() * 2 * math.Pi
		r := 1 + rng.Float64()*2
		pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
	}
	return pts
}

// TestWindowedTraverseBoundsMemory drives a long traverse through maps
// with a tight window: resident memory must stay below the unbounded
// reference, revisited regions must answer identically (paging back in
// transparently), and the closed maps must still serialize to the
// reference bytes — the spilled portion folds back into the stream.
func TestWindowedTraverseBoundsMemory(t *testing.T) {
	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, shards := range []int{0, 2} {
			t.Run(fmt.Sprintf("%v/shards=%d", backend, shards), func(t *testing.T) {
				base := Options{Resolution: 0.1, Mode: ModeSerial, Backend: backend, Shards: shards, CacheBuckets: 1 << 10}
				ref := MustNew(base)
				win := MustNew(windowOpts(t, base, 1))

				rng := rand.New(rand.NewSource(29))
				winRNG := rand.New(rand.NewSource(29))
				var origins []Vec3
				var firstScan []Vec3
				for i := 0; i < 12; i++ {
					x := 3 * float64(i)
					origins = append(origins, V(x, 0, 0.5))
				}
				for i, origin := range origins {
					pts := traverseScan(rng, origin, 150)
					if err := ref.Insert(origin, pts); err != nil {
						t.Fatal(err)
					}
					if err := win.Insert(origin, traverseScan(winRNG, origin, 150)); err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						firstScan = pts
					}
				}

				st := win.Stats()
				if st.Window.SpilledTiles == 0 || st.Window.Evictions == 0 {
					t.Fatalf("traverse spilled nothing: %+v", st.Window)
				}
				refMem := ref.Stats().Arena.Bytes
				winMem := win.Stats().Arena.Bytes
				if winMem >= refMem {
					t.Fatalf("windowed resident bytes %d not below unbounded %d", winMem, refMem)
				}
				if shards > 0 {
					spilled := 0
					for _, ss := range win.ShardStats() {
						spilled += ss.Window.SpilledTiles
					}
					if spilled == 0 {
						t.Fatal("per-shard window stats report no spilled tiles")
					}
				}

				// Revisit the start of the traverse: long-spilled tiles must
				// answer exactly like the unbounded map.
				for _, p := range firstScan {
					lw, kw := ref.Occupancy(p)
					if lg, kg := win.Occupancy(p); lg != lw || kg != kw {
						t.Fatalf("revisit Occupancy(%v) = (%v,%v), ref (%v,%v)", p, lg, kg, lw, kw)
					}
				}
				if win.Stats().Window.Reloads == 0 {
					t.Fatal("revisits paged nothing back in")
				}

				ref.Close()
				win.Close()
				var want, got bytes.Buffer
				if _, err := ref.WriteTo(&want); err != nil {
					t.Fatal(err)
				}
				if _, err := win.WriteTo(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatal("windowed serialization differs from unbounded reference")
				}
			})
		}
	}
}

// TestWindowedShardedOpen round-trips a windowed sharded map through
// WriteTo/Open: the stream (resident + spilled content merged) must
// reopen — windowed again — answer identically, and reserialize to the
// same bytes.
func TestWindowedShardedOpen(t *testing.T) {
	src := MustNew(windowOpts(t, Options{Resolution: 0.1, Mode: ModeParallel, Shards: 4, CacheBuckets: 1 << 10}, 1))
	rng := rand.New(rand.NewSource(31))
	var probes []Vec3
	for i := 0; i < 10; i++ {
		origin := V(2.5*float64(i), 0, 0.5)
		pts := traverseScan(rng, origin, 150)
		if err := src.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pts[:15]...)
	}
	if src.Stats().Window.SpilledTiles == 0 {
		t.Fatal("source map spilled nothing")
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := src.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{
		windowOpts(t, Options{Shards: 4}, 1),
		windowOpts(t, Options{Backend: BackendGrid, Shards: 2}, 2),
		{}, // unwindowed single-driver reader
	} {
		m, err := Open(bytes.NewReader(blob.Bytes()), opts)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opts, err)
		}
		for _, p := range probes {
			lw, kw := src.Occupancy(p)
			if lg, kg := m.Occupancy(p); lg != lw || kg != kw {
				t.Fatalf("Open(%+v): disagrees with source at %v", opts, p)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if _, err := m.WriteTo(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), blob.Bytes()) {
			t.Errorf("Open(%+v): reserialization differs from source", opts)
		}
	}
}
